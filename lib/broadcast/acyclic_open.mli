(** Algorithm 1 of the paper: optimal acyclic broadcast schemes for
    instances with open nodes only (Section III-B).

    Nodes are served one after the other in non-increasing bandwidth
    order; at every point at most one node is partially served. The
    resulting scheme is acyclic, achieves any target throughput
    [t <= T*ac = min (b0, S_(n-1) / n)], and every node's outdegree is at
    most [ceil (b i / t) + 1] — one more than the trivial lower bound,
    which is optimal unless P = NP (Theorem 3.1). *)

val build : ?t:float -> Platform.Instance.t -> Scheme.t
(** [build inst] returns the scheme artifact of throughput [t] (default:
    [Bounds.acyclic_open_optimal inst]), with provenance
    [Scheme.Algorithm1] and the [+1] degree promise. Requires a sorted
    instance with [m = 0], [n >= 1], and [t <= T*ac] (within tolerance);
    raises [Invalid_argument] otherwise. *)

val build_prefix : Platform.Instance.t -> t:float -> senders:int -> Flowgraph.Graph.t
(** [build_prefix inst ~t ~senders] runs Algorithm 1 but lets only nodes
    [C0 .. C(senders-1)] spend bandwidth, producing the [(i0 - 1)]-partial
    solutions used by the cyclic algorithm (Theorem 5.2): receivers are
    served at rate [t] in order until the allowed bandwidth runs out, the
    next receiver being possibly partial. No feasibility precondition
    beyond [t > 0] and [senders <= n + 1]. *)

val first_deficit : Platform.Instance.t -> t:float -> int option
(** [first_deficit inst ~t] is the smallest index [i0 >= 1] such that
    [S_(i0 - 1) < i0 * t] (strictly, beyond tolerance) — the first node
    that cannot be fully served by its predecessors — or [None] when
    Algorithm 1 alone reaches throughput [t] (in particular whenever
    [t <= T*ac]). Only meaningful for sorted open-only instances. *)
