open Platform
module Csr = Flowgraph.Csr

type report = {
  bandwidth_ok : bool;
  firewall_ok : bool;
  bin_ok : bool;
  source_receives : bool;
  acyclic : bool;
  throughput : float;
  fast_path : bool;
}

(* The library-wide tolerance for comparing flow values: max-flow values
   are iterative float computations whose exact bits depend on
   augmentation order, so every consumer (scheme targets, repair audits,
   the incremental-vs-from-scratch cross-check) compares within the same
   1e-6 relative slack. *)
let flow_slack x = 1e-6 *. Float.max 1. (Float.abs x)

(* Structural constraints only — no flow computation. All reads run on
   the frozen CSR snapshot: out/in weights are array lookups instead of
   hashtable folds. *)
let structural ?(eps = Util.eps) inst c =
  let size = Instance.size inst in
  if Csr.node_count c <> size then
    invalid_arg "Verify.check: node count mismatch";
  let b = inst.Instance.bandwidth in
  let bandwidth_ok = ref true and firewall_ok = ref true in
  for i = 0 to size - 1 do
    if not (Util.fle ~eps (Csr.out_weight c i) b.(i)) then
      bandwidth_ok := false
  done;
  Csr.iter_edges
    (fun ~src ~dst _w ->
      if Instance.is_guarded inst src && Instance.is_guarded inst dst then
        firewall_ok := false)
    c;
  let bin_ok =
    match inst.Instance.bin with
    | None -> true
    | Some caps ->
      let ok = ref true in
      for i = 0 to size - 1 do
        if not (Util.fle ~eps (Csr.in_weight c i) caps.(i)) then ok := false
      done;
      !ok
  in
  (!bandwidth_ok, !firewall_ok, bin_ok)

(* Delta-scoped structural pass: bandwidth and firewall on the given rows
   (and download caps on those nodes when [bin] is set) — nothing else is
   read. Certificate-trusting consumers ([Scheme.apply_delta], the
   [Churn.Audit] certificate level) check just the disturbed region and
   rely on the base artifact's constructor for the rest. *)
let row_violation ?(eps = Util.eps) ?(bin = false) inst c ~rows =
  let size = Instance.size inst in
  if Csr.node_count c <> size then
    invalid_arg "Verify.row_violation: node count mismatch";
  let b = inst.Instance.bandwidth in
  let bad = ref None in
  let set msg = if !bad = None then bad := Some msg in
  Array.iter
    (fun i ->
      if i < 0 || i >= size then
        invalid_arg "Verify.row_violation: row out of range";
      if not (Util.fle ~eps (Csr.out_weight c i) b.(i)) then
        set
          (Printf.sprintf "node %d exceeds its bandwidth (%g > %g)" i
             (Csr.out_weight c i) b.(i));
      (if bin then
         match inst.Instance.bin with
         | Some caps when not (Util.fle ~eps (Csr.in_weight c i) caps.(i)) ->
           set
             (Printf.sprintf "node %d exceeds its download cap (%g > %g)" i
                (Csr.in_weight c i) caps.(i))
         | _ -> ());
      if Instance.is_guarded inst i then
        for e = c.Csr.row_off.(i) to c.Csr.row_off.(i + 1) - 1 do
          let dst = c.Csr.col.(e) in
          if Instance.is_guarded inst dst then
            set
              (Printf.sprintf
                 "guarded-to-guarded edge C%d -> C%d violates the firewall \
                  constraint"
                 i dst)
        done)
    rows;
  !bad

let throughput g =
  if Flowgraph.Graph.node_count g <= 1 then infinity
  else Flowgraph.Maxflow.broadcast_throughput g ~src:0

let check_csr ?eps inst c =
  let bandwidth_ok, firewall_ok, bin_ok = structural ?eps inst c in
  let size = Instance.size inst in
  let source_receives = Csr.in_degree c 0 > 0 in
  let acyclic = Csr.is_acyclic c in
  (* Structure-aware oracle: on acyclic schemes the throughput is the
     minimal incoming rate (Csr.min_incoming_cut), one array scan;
     cyclic schemes fall back to the batch CSR Dinic solver. *)
  let throughput, fast_path =
    if size = 1 then (infinity, true)
    else if acyclic then (fst (Csr.min_incoming_cut c ~src:0), true)
    else (Flowgraph.Maxflow.min_broadcast_flow_csr c ~src:0, false)
  in
  {
    bandwidth_ok;
    firewall_ok;
    bin_ok;
    source_receives;
    acyclic;
    throughput;
    fast_path;
  }

(* One snapshot serves the structural pass, the acyclicity test and the
   throughput engine — the graph is frozen exactly once per scheme.
   Callers that already hold a snapshot (the [Scheme] artifact layer)
   enter at [check_csr] and skip the freeze entirely. *)
let check ?eps inst g = check_csr ?eps inst (Csr.of_graph g)

let check_batch ?eps batch = List.map (fun (inst, g) -> check ?eps inst g) batch

let valid ?eps inst g =
  let bandwidth_ok, firewall_ok, bin_ok =
    structural ?eps inst (Csr.of_graph g)
  in
  bandwidth_ok && firewall_ok && bin_ok

let achieves ?eps inst g ~rate =
  let c = Csr.of_graph g in
  let bandwidth_ok, firewall_ok, bin_ok = structural ?eps inst c in
  bandwidth_ok && firewall_ok && bin_ok
  && (Instance.size inst = 1
     ||
     (* Same slack as the historical [fge ~eps:1e-6 throughput rate]
        comparison, folded into the target so augmentation can stop as
        soon as the relaxed rate is certified. *)
     let target = rate -. flow_slack rate in
     if Csr.is_acyclic c then
       fst (Csr.min_incoming_cut c ~src:0) >= target
     else Flowgraph.Maxflow.achieves_rate_csr c ~src:0 ~rate:target)
