open Platform

type report = {
  bandwidth_ok : bool;
  firewall_ok : bool;
  bin_ok : bool;
  source_receives : bool;
  acyclic : bool;
  throughput : float;
  fast_path : bool;
}

(* Structural constraints only — no flow computation. *)
let structural ?(eps = Util.eps) inst g =
  let size = Instance.size inst in
  if Flowgraph.Graph.node_count g <> size then
    invalid_arg "Verify.check: node count mismatch";
  let b = inst.Instance.bandwidth in
  let bandwidth_ok = ref true and firewall_ok = ref true in
  for i = 0 to size - 1 do
    if not (Util.fle ~eps (Flowgraph.Graph.out_weight g i) b.(i)) then
      bandwidth_ok := false
  done;
  Flowgraph.Graph.iter_edges
    (fun ~src ~dst _w ->
      if Instance.is_guarded inst src && Instance.is_guarded inst dst then
        firewall_ok := false)
    g;
  let bin_ok =
    match inst.Instance.bin with
    | None -> true
    | Some caps ->
      let ok = ref true in
      for i = 0 to size - 1 do
        if not (Util.fle ~eps (Flowgraph.Graph.in_weight g i) caps.(i)) then
          ok := false
      done;
      !ok
  in
  (!bandwidth_ok, !firewall_ok, bin_ok)

let throughput g =
  if Flowgraph.Graph.node_count g <= 1 then infinity
  else Flowgraph.Maxflow.broadcast_throughput g ~src:0

let check ?eps inst g =
  let bandwidth_ok, firewall_ok, bin_ok = structural ?eps inst g in
  let size = Instance.size inst in
  let source_receives = Flowgraph.Graph.in_edges g 0 <> [] in
  let acyclic = Flowgraph.Topo.is_acyclic g in
  (* Structure-aware oracle: on acyclic schemes the throughput is the
     minimal incoming rate (Topo.min_incoming_cut), one O(V + E) pass;
     cyclic schemes fall back to the batch Dinic solver. *)
  let throughput, fast_path =
    if size = 1 then (infinity, true)
    else if acyclic then
      (fst (Flowgraph.Topo.min_incoming_cut g ~src:0), true)
    else (Flowgraph.Maxflow.min_broadcast_flow g ~src:0, false)
  in
  {
    bandwidth_ok;
    firewall_ok;
    bin_ok;
    source_receives;
    acyclic;
    throughput;
    fast_path;
  }

let check_batch ?eps batch = List.map (fun (inst, g) -> check ?eps inst g) batch

let valid ?eps inst g =
  let bandwidth_ok, firewall_ok, bin_ok = structural ?eps inst g in
  bandwidth_ok && firewall_ok && bin_ok

let achieves ?eps inst g ~rate =
  valid ?eps inst g
  && (Instance.size inst = 1
     ||
     (* Same slack as the historical [fge ~eps:1e-6 throughput rate]
        comparison, folded into the target so augmentation can stop as
        soon as the relaxed rate is certified. *)
     let slack = 1e-6 *. Float.max 1. (Float.abs rate) in
     let target = rate -. slack in
     if Flowgraph.Topo.is_acyclic g then
       fst (Flowgraph.Topo.min_incoming_cut g ~src:0) >= target
     else Flowgraph.Maxflow.achieves_rate g ~src:0 ~rate:target)
