(** Local overlay repair under churn.

    The paper's conclusion flags churn as the open problem of its approach
    ("it is probably not resilient to churn"). This module implements the
    natural local-repair strategies on the acyclic overlays built here and
    quantifies the trade-off against a full rebuild:

    - {!leave}: when a node departs, its upload responsibilities are
      redistributed to earlier nodes with spare upload capacity (keeping
      the scheme acyclic and firewall-safe) and its own reception is
      dropped; nothing else moves. The repaired rate may be below the new
      instance's optimum — the honest number is re-measured through the
      patched scheme's cached CSR snapshot.
    - {!leave_batch}: a correlated failure — several nodes vanish in the
      same event (rack loss, AS partition) and the survivors are patched
      once, not once per casualty.
    - {!join}: a newcomer is appended last in the topological order and
      fed from whatever spare capacity exists (guarded supply first if it
      is open); its own upload stays idle until the next rebuild, so it
      never degrades existing nodes. On a saturated overlay the newcomer
      is admitted at rate 0 and reported through {!stats.starved} — the
      operation never raises for lack of capacity.
    - {!degrade} / {!restore}: a node's measured upload capacity changes
      without any membership change (congestion, throttling, recovery).
      The node is moved to its sorted position within its class, its
      outgoing edges are scaled down to the new cap when necessary, and
      every reception deficit in the overlay is refilled from spare
      capacity in topological order — so a restore also heals nodes
      starved by an earlier degrade.

    All patch operations touch [O(degree)] edges where a rebuild re-wires
    the whole swarm; the churn experiments (E13/E14) and the
    fault-injection engine ({!Churn.Engine}) measure exactly this gap and
    the throughput cost of patching versus rebuilding. *)

type delta = {
  full : bool;
      (** the whole overlay may have changed ({!rebuild}); consumers must
          fall back to full scans and ignore the other fields *)
  identity : bool;
      (** [node_map] is the identity — no renumbering happened, so node
          ids (and any id-keyed consumer state) are stable across the
          event; newly admitted nodes, if any, are appended at the end.
          Meaningful only when [full] is [false]. This is the fast case
          that lets {!Scheme.apply_delta} keep the frozen snapshot warm:
          a guarded join landing last in its class, or a
          degrade/restore whose class re-sort is a no-op. *)
  touched : int array;
      (** post-event ids of every node whose bandwidth or incident edge
          set changed, sorted ascending — renaming alone does not touch
          a node. The certificate-trusting auditor re-checks exactly
          these rows. *)
  added : (int * int) array;
      (** edges created by the repair (post-event ids, sorted) *)
  removed : (int * int) array;
      (** edges that vanished with a departure (pre-event ids, sorted);
          edges clamped to zero by a degrade appear in [reweighted]
          instead *)
  reweighted : (int * int) array;
      (** edges whose weight changed (post-event ids, sorted) *)
}
(** Structured account of what an operation disturbed — the contract that
    lets downstream layers (snapshot patching, the churn auditor's
    certificate level, warm flow maintenance) do O(touched) work per
    event instead of rescanning O(V+E) state. *)

val full_delta : delta
(** The everything-may-have-changed delta ([full = true], empty edge
    lists) — what {!rebuild} reports, and the conservative default for
    consumers handed no repair stats. *)

type stats = {
  patch_edges : int;  (** edge changes performed by the local repair *)
  rebuild_edges : int;
      (** edge changes a full re-optimization would have required *)
  rate_after : float;
      (** throughput of the patched overlay, measured through the scheme's
          memoized report (the CSR structured fast path on acyclic
          overlays — no fresh max-flow per operation) *)
  optimal_after : float;  (** optimal acyclic rate of the new instance *)
  starved : int list;
      (** non-source nodes whose incoming rate remains below the overlay's
          target rate (beyond a [1e-6] relative slack) after the repair —
          empty on a nominal patch. A join on a saturated overlay reports
          the newcomer here instead of raising. *)
  node_map : int array;
      (** renumbering performed by the repair: [node_map.(v)] is the
          index the pre-repair node [v] carries in the repaired overlay,
          or [-1] if it departed. Every operation renumbers (instances
          stay bandwidth-sorted within classes); warm consumers —
          {!Flowgraph.Maxflow.Incremental} behind the churn engine's
          incremental audit — use this map to carry state across the
          event. Identity for {!rebuild}. *)
  delta : delta;
      (** what the event disturbed, for delta-scoped consumers; a
          {!rebuild} reports [delta.full = true] *)
}

val leave : Overlay.t -> node:int -> Overlay.t * stats
(** [leave o ~node] removes node [node] (an index in the overlay's
    instance, not the source) and patches the overlay. The returned
    overlay is {!Overlay.well_formed}; its scheme keeps the original
    target rate and carries [Scheme.Repaired] provenance (collapsed to a
    single wrapping layer across successive repairs, with no degree
    promise). Raises [Invalid_argument] on the source, an out-of-range
    index, or when the overlay has a single receiver left. *)

val leave_batch : Overlay.t -> nodes:int list -> Overlay.t * stats
(** [leave_batch o ~nodes] removes every node of [nodes] in one event and
    patches the survivors once, in topological order. Equivalent to (but
    cheaper and less churn-prone than) a sequence of {!leave}s.
    Raises [Invalid_argument] on an empty list, duplicates, the source, an
    out-of-range index, or when fewer than two nodes would survive. *)

val join :
  Overlay.t ->
  bandwidth:float ->
  cls:Platform.Instance.node_class ->
  Overlay.t * stats
(** [join o ~bandwidth ~cls] inserts a new node of the given class. The
    node is placed at its sorted position in the instance (so a later
    rebuild sees a sorted instance) but fed last. When no node has spare
    upload capacity the newcomer is admitted at rate 0 and listed in
    {!stats.starved} — saturation is a reported condition, not an error.
    Raises [Invalid_argument] on negative or non-finite bandwidth. *)

val degrade : Overlay.t -> node:int -> bandwidth:float -> Overlay.t * stats
(** [degrade o ~node ~bandwidth] lowers [node]'s upload capacity to
    [bandwidth] (which must not exceed its current bandwidth). The node
    keeps its identity: it is moved to its sorted position within its
    class, its outgoing edges are scaled down proportionally when they
    exceed the new cap, and the resulting reception deficits are refilled
    from spare capacity in topological order. Children that cannot be
    refilled are reported through {!stats.starved}. Degrading the source
    to 0 is rejected (the instance would not admit any broadcast);
    otherwise raises [Invalid_argument] on an out-of-range node, a
    negative, non-finite or increased bandwidth. *)

val restore : Overlay.t -> node:int -> bandwidth:float -> Overlay.t * stats
(** [restore o ~node ~bandwidth] raises [node]'s upload capacity to
    [bandwidth] (which must be at least its current bandwidth) and uses
    the recovered spare capacity to refill any node still starved, in
    topological order — the healing converse of {!degrade}. Raises
    [Invalid_argument] on an out-of-range node or a decreased bandwidth. *)

val rebuild : ?headroom:float -> Overlay.t -> Overlay.t * stats
(** [rebuild o] re-runs the full Theorem 4.1 pipeline on the overlay's
    instance — the expensive alternative the patch operations are
    measured against. [patch_edges = rebuild_edges] in the returned
    stats; the result carries fresh [Scheme.Theorem41] provenance.

    By default the rebuild targets the instance's optimal acyclic rate,
    leaving zero spare upload capacity — so the next [join] necessarily
    admits its newcomer at rate 0. [headroom] (in (0, 1]) instead targets
    that fraction of the optimum, trading throughput for patch capacity;
    [stats.optimal_after] still reports the true optimum, so the
    post-rebuild ratio is honestly [headroom], not 1. Raises
    [Invalid_argument] on a headroom outside (0, 1]. *)
