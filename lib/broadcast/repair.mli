(** Local overlay repair under churn.

    The paper's conclusion flags churn as the open problem of its approach
    ("it is probably not resilient to churn"). This module implements the
    natural local-repair strategy on the acyclic overlays built here and
    quantifies the trade-off against a full rebuild:

    - {!leave}: when a node departs, its upload responsibilities are
      redistributed to earlier nodes with spare upload capacity (keeping
      the scheme acyclic and firewall-safe) and its own reception is
      dropped; nothing else moves. The repaired rate may be below the new
      instance's optimum — the honest number is re-measured by max-flow.
    - {!join}: a newcomer is appended last in the topological order and
      fed from whatever spare capacity exists (guarded supply first if it
      is open); its own upload stays idle until the next rebuild, so it
      never degrades existing nodes.

    Both operations touch [O(degree)] edges where a rebuild re-wires the
    whole swarm; the churn experiment (E13) measures exactly this gap and
    the throughput cost of patching versus rebuilding. *)

type stats = {
  patch_edges : int;  (** edge changes performed by the local repair *)
  rebuild_edges : int;
      (** edge changes a full re-optimization would have required *)
  rate_after : float;  (** max-flow rate of the patched overlay *)
  optimal_after : float;  (** optimal acyclic rate of the new instance *)
}

val leave : Overlay.t -> node:int -> Overlay.t * stats
(** [leave o ~node] removes node [node] (an index in the overlay's
    instance, not the source) and patches the overlay. The returned
    overlay is {!Overlay.well_formed}; its scheme keeps the original
    target rate and carries [Scheme.Repaired] provenance (collapsed to a
    single wrapping layer across successive repairs, with no degree
    promise). Raises [Invalid_argument] on the source, an out-of-range
    index, or when the overlay has a single receiver left. *)

val join :
  Overlay.t ->
  bandwidth:float ->
  cls:Platform.Instance.node_class ->
  Overlay.t * stats
(** [join o ~bandwidth ~cls] inserts a new node of the given class. The
    node is placed at its sorted position in the instance (so a later
    rebuild sees a sorted instance) but fed last. Raises
    [Invalid_argument] on negative bandwidth. *)

val rebuild : Overlay.t -> Overlay.t * stats
(** [rebuild o] re-runs the full Theorem 4.1 pipeline on the overlay's
    instance — the expensive alternative the patch operations are
    measured against. [patch_edges = rebuild_edges] in the returned
    stats; the result carries fresh [Scheme.Theorem41] provenance. *)
