open Platform

let check_sorted_open inst =
  if inst.Instance.m <> 0 then invalid_arg "Acyclic_open: instance has guarded nodes";
  if not (Instance.sorted inst) then invalid_arg "Acyclic_open: instance must be sorted"

let build_prefix inst ~t ~senders =
  if t <= 0. then invalid_arg "Acyclic_open.build_prefix: t must be positive";
  let n = inst.Instance.n in
  if senders < 0 || senders > n + 1 then
    invalid_arg "Acyclic_open.build_prefix: senders out of range";
  let b = inst.Instance.bandwidth in
  let g = Flowgraph.Graph.create (Instance.size inst) in
  let cut = Util.eps *. t in
  (* r: remaining need of the receiver currently being filled. *)
  let recv = ref 1 and r = ref t in
  for i = 0 to senders - 1 do
    let s = ref b.(i) in
    while !s > cut && !recv <= n do
      (* The feasibility invariant S_(i-1) >= i t guarantees recv > i here
         for any t <= T*ac; for larger t (partial builds) the deficit node
         i0 satisfies recv <= i0 only once senders are exhausted. *)
      let amount = Float.min !r !s in
      (* recv = i can only carry a rounding residue: the invariant
         S_(i-1) >= i t keeps genuine transfers strictly forward. *)
      assert (!recv <> i || amount <= cut);
      if !recv <> i && amount > cut then
        Flowgraph.Graph.add_edge g ~src:i ~dst:!recv amount;
      s := !s -. amount;
      r := !r -. amount;
      if !r <= cut then begin
        incr recv;
        r := t
      end
    done
  done;
  g

let first_deficit inst ~t =
  check_sorted_open inst;
  let b = inst.Instance.bandwidth in
  let n = inst.Instance.n in
  let rec scan i s_prev =
    if i > n then None
    else if Util.flt s_prev (float_of_int i *. t) then Some i
    else scan (i + 1) (s_prev +. b.(i))
  in
  scan 1 b.(0)

let build ?t inst =
  check_sorted_open inst;
  if inst.Instance.n < 1 then invalid_arg "Acyclic_open.build: need n >= 1";
  let t_opt = Bounds.acyclic_open_optimal inst in
  let t = Option.value ~default:t_opt t in
  if t <= 0. then invalid_arg "Acyclic_open.build: t must be positive";
  if Util.fgt t t_opt then
    invalid_arg "Acyclic_open.build: t exceeds the optimal acyclic throughput";
  let g = build_prefix inst ~t ~senders:(inst.Instance.n + 1) in
  Scheme.create
    ~provenance:{ Scheme.algorithm = Scheme.Algorithm1; rate = t; degree_bound = Some 1 }
    inst g
