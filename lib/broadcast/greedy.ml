open Platform

type decision = {
  letter : Instance.node_class;
  state : Word.state;
}

(* One decision of Algorithm 2 given the current accounting: which class
   should the next node have? Mirrors lines 4-15 of the paper's
   pseudo-code; [None] means line 3 failed (total supply below T). *)
let choose inst ~rate (st : Word.state) =
  let n = inst.Instance.n and m = inst.Instance.m in
  let b = inst.Instance.bandwidth in
  let i = st.Word.fed_open and j = st.Word.fed_guarded in
  let total = st.Word.avail_open +. st.Word.avail_guarded in
  if Util.flt total rate then None
  else if i = n then Some Instance.Guarded
  else if j = m then Some Instance.Open
  else begin
    let b_guard_next = b.(n + j + 1) and b_open_next = b.(i + 1) in
    let open_short = Util.flt st.Word.avail_open rate in
    if j = m - 1 then
      (* A single guarded node remains: pick the larger bandwidth next,
         unless the guarded one cannot be paid for. *)
      if open_short || b_guard_next < b_open_next then Some Instance.Open
      else Some Instance.Guarded
    else if open_short || Util.flt (total +. b_guard_next) (2. *. rate) then
      (* Choosing □ now would either be unpayable (O < T) or leave less
         than T of total supply afterwards (O + G - T + b_next < T). *)
      Some Instance.Open
    else Some Instance.Guarded
  end

let run_algorithm inst ~rate =
  if not (Instance.sorted inst) then invalid_arg "Greedy: instance must be sorted";
  if rate <= 0. then invalid_arg "Greedy: rate must be positive";
  let total = inst.Instance.n + inst.Instance.m in
  let rec go st acc k =
    if k = total then (Some (List.rev acc), List.rev acc)
    else
      match choose inst ~rate st with
      | None -> (None, List.rev acc)
      | Some letter -> begin
        match Word.step inst ~rate st letter with
        | None -> (None, List.rev acc)
        | Some st' ->
          (* Line 17 of the pseudo-code (O(pi) < 0) is subsumed: a guarded
             step already requires O >= T and an open step keeps O >= 0. *)
          go st' ({ letter; state = st' } :: acc) (k + 1)
      end
  in
  go (Word.initial_state inst) [] 0

let word_of_trace trace = Array.of_list (List.map (fun d -> d.letter) trace)

let test_trace inst ~rate =
  match run_algorithm inst ~rate with
  | Some trace, full -> (Some (word_of_trace trace), full)
  | None, partial -> (None, partial)

let test inst ~rate = fst (test_trace inst ~rate)

let optimal_acyclic ?iterations inst =
  if not (Instance.sorted inst) then
    invalid_arg "Greedy.optimal_acyclic: instance must be sorted";
  if inst.Instance.n + inst.Instance.m < 1 then
    invalid_arg "Greedy.optimal_acyclic: no receiver";
  let hi = Bounds.cyclic_upper inst in
  if hi <= 0. then (0., Array.make (inst.Instance.n + inst.Instance.m) Instance.Open)
  else begin
    let feasible rate = rate <= 0. || test inst ~rate <> None in
    let search = Util.dichotomic_search ?iterations ~lo:0. ~hi feasible in
    (* lo = 0 is always feasible (the degenerate rate), so the search
       cannot report infeasibility here; the witness lookup below handles
       the t = 0 fringe. *)
    assert search.Util.feasible;
    let t = search.Util.value in
    match test inst ~rate:t with
    | Some w -> (t, w)
    | None ->
      (* t = 0 or tolerance fringe: nudge down until the witness exists. *)
      let rec retry rate k =
        if k = 0 || rate <= 0. then
          (0., Array.append
                 (Array.make inst.Instance.n Instance.Open)
                 (Array.make inst.Instance.m Instance.Guarded))
        else
          match test inst ~rate with
          | Some w -> (rate, w)
          | None -> retry (rate *. (1. -. 1e-9)) (k - 1)
      in
      retry t 8
  end
